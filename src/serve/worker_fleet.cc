#include "worker_fleet.hh"

#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <poll.h>
#include <pthread.h>
#include <signal.h>
#include <unistd.h>

#include "common/logging.hh"
#include "core/job_serde.hh"
#include "obs/metrics.hh"

namespace stsim
{
namespace serve
{

namespace
{

using clock_t_ = std::chrono::steady_clock;

/**
 * Fleet supervision counters. Process-wide (shared if several fleets
 * ever coexist); fetched lazily because these are rare-event paths.
 * fleet.kills counts deliberate supervisor kills while serving
 * (cancel/deadline, oversize reply, bad or late hello) -- not the
 * defensive kill in the death handler or shutdown stragglers.
 */
obs::Counter &
respawnsCtr()
{
    static obs::Counter &c =
        obs::Registry::instance().counter("fleet.respawns");
    return c;
}

obs::Counter &
quarantinesCtr()
{
    static obs::Counter &c =
        obs::Registry::instance().counter("fleet.quarantines");
    return c;
}

obs::Counter &
killsCtr()
{
    static obs::Counter &c =
        obs::Registry::instance().counter("fleet.kills");
    return c;
}

/// A worker drowning us in output is as dead as one that is silent.
constexpr std::size_t kMaxReplyBytes = std::size_t{8} << 20;

/// Bounded synchronous reap after an EOF: normal deaths (exit,
/// SIGKILL, SIGSEGV) are reapable within a tick or two.
constexpr int kReapSpinMs = 40;

std::uint64_t
fnv1a(std::string_view s)
{
    std::uint64_t h = 1469598103934665603ull;
    for (unsigned char c : s) {
        h ^= c;
        h *= 1099511628211ull;
    }
    return h;
}

/** Blocking full write; EPIPE (dead worker) returns false. */
bool
writeAll(int fd, const std::string &buf)
{
    std::size_t off = 0;
    while (off < buf.size()) {
        ssize_t n = ::write(fd, buf.data() + off, buf.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        off += static_cast<std::size_t>(n);
    }
    return true;
}

} // namespace

WorkerFleet::WorkerFleet(FleetOptions opts,
                         dist::WorkerLauncher &launcher)
    : opts_(std::move(opts)), launcher_(launcher)
{
    stsim_assert(opts_.workers > 0, "fleet: needs at least one worker");
    stsim_assert(opts_.jobAttempts > 0,
                 "fleet: jobAttempts must be positive");
    stsim_assert(opts_.poisonThreshold > 0,
                 "fleet: poisonThreshold must be positive");
}

WorkerFleet::~WorkerFleet()
{
    stop();
}

void
WorkerFleet::start()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        stsim_assert(!started_, "fleet: started twice");
        if (::pipe2(wakePipe_, O_CLOEXEC | O_NONBLOCK) < 0)
            stsim_fatal("fleet: pipe: %s", std::strerror(errno));
        slots_.resize(opts_.workers);
        for (Slot &s : slots_)
            spawnSlot(s);
        started_ = true;
    }
    supervisor_ = std::thread([this] { supervisorMain(); });
}

void
WorkerFleet::stop()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (!started_ || stopped_) {
            stopped_ = started_;
            return;
        }
        stopping_ = true;
        stopped_ = true;
    }
    wake();
    if (supervisor_.joinable())
        supervisor_.join();
    if (wakePipe_[0] >= 0)
        ::close(wakePipe_[0]);
    if (wakePipe_[1] >= 0)
        ::close(wakePipe_[1]);
    wakePipe_[0] = wakePipe_[1] = -1;
}

void
WorkerFleet::wake()
{
    char b = 1;
    // Nonblocking: a full pipe already guarantees a pending wakeup.
    ssize_t n = ::write(wakePipe_[1], &b, 1);
    (void)n;
}

void
WorkerFleet::submit(std::uint64_t id, const SimJob &job,
                    std::shared_ptr<CancelToken> token, Callback cb)
{
    // Wire frame: the job's manifest serialization with the id
    // spliced in front -- exactly the daemon's own request shape, so
    // the worker parses it with the same parseServeRequest.
    std::string jobJson = serde::toJson(job);
    Job j;
    j.id = id;
    j.line = "{\"id\":" + std::to_string(id) + "," + jobJson.substr(1);
    j.line.push_back('\n');
    j.finger = fnv1a(jobJson);
    j.token = std::move(token);
    j.cb = std::move(cb);
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (stopping_) {
            FleetResult res;
            res.outcome = FleetOutcome::kCancelled;
            res.detail = "fleet is stopping";
            completeJob(std::move(j), std::move(res));
            return;
        }
        queue_.push_back(std::move(j));
    }
    wake();
}

FleetSnapshot
WorkerFleet::snapshot() const
{
    std::lock_guard<std::mutex> lock(mu_);
    FleetSnapshot out;
    out.restartsTotal = restartsTotal_;
    out.quarantined = quarantined_.size();
    out.poisonRejected = poisonRejected_;
    out.workers.reserve(slots_.size());
    for (std::size_t i = 0; i < slots_.size(); ++i) {
        const Slot &s = slots_[i];
        FleetWorkerInfo w;
        w.slot = static_cast<unsigned>(i);
        w.pid = s.proc.pid;
        switch (s.state) {
        case Slot::kDown:
            w.state = "down";
            break;
        case Slot::kSpawning:
            w.state = "spawning";
            break;
        case Slot::kIdle:
            w.state = "idle";
            break;
        case Slot::kBusy:
            w.state = "busy";
            break;
        case Slot::kBackoff:
            w.state = "backoff";
            break;
        }
        w.jobs = s.jobsServed;
        w.restarts = s.restarts;
        w.backoffStage = s.crashStreak;
        out.workers.push_back(w);
    }
    return out;
}

void
WorkerFleet::spawnSlot(Slot &s)
{
    s.proc = launcher_.launch();
    s.state = Slot::kSpawning;
    s.rdbuf.clear();
    s.killedByFleet = false;
    s.helloBy = clock_t_::now() +
                std::chrono::milliseconds(opts_.helloTimeoutMs);
}

void
WorkerFleet::closeSlotFds(Slot &s)
{
    if (s.proc.stdinFd >= 0)
        ::close(s.proc.stdinFd);
    if (s.proc.stdoutFd >= 0)
        ::close(s.proc.stdoutFd);
    s.proc.stdinFd = s.proc.stdoutFd = -1;
}

void
WorkerFleet::completeJob(Job &&job, FleetResult res)
{
    Callback cb = std::move(job.cb);
    if (!cb)
        return;
    // A throwing callback must not take the supervisor down with it.
    try {
        cb(std::move(res));
    } catch (const std::exception &e) {
        stsim_warn("fleet: completion callback threw: %s", e.what());
    }
}

/**
 * A worker is gone (EOF on its stdout, hello timeout, or a failed
 * dispatch write). Reaps it, settles its job (requeue / internal /
 * poison), and schedules the slot's respawn -- immediately for a
 * deliberate fleet kill, behind capped-exponential backoff with
 * deterministic per-slot jitter for a genuine crash.
 */
void
WorkerFleet::handleDeath(std::size_t idx, clock_t_::time_point now)
{
    Slot &s = slots_[idx];
    pid_t pid = s.proc.pid;
    closeSlotFds(s);
    s.rdbuf.clear();
    s.proc.pid = -1;

    std::string status = "status unknown";
    if (pid > 0) {
        // Defensive: EOF can also mean "closed its stdout but lives".
        launcher_.kill(pid);
        bool reaped = false;
        for (int i = 0; i < kReapSpinMs && !reaped; ++i) {
            reaped = launcher_.reap(pid, status);
            if (!reaped)
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(1));
        }
        if (!reaped)
            unreaped_.push_back(pid);
    }

    if (s.job) {
        Job job = std::move(*s.job);
        s.job.reset();
        job.deaths++;
        unsigned kills = ++fingerKills_[job.finger];
        if (kills >= opts_.poisonThreshold) {
            quarantined_.insert(job.finger);
            fingerKills_.erase(job.finger);
            poisonRejected_++;
            quarantinesCtr().inc();
            stsim_warn("fleet: job (id %llu) killed %u consecutive "
                       "workers (%s); quarantined",
                       static_cast<unsigned long long>(job.id), kills,
                       status.c_str());
            FleetResult res;
            res.outcome = FleetOutcome::kPoison;
            res.detail = "job killed " + std::to_string(kills) +
                         " consecutive workers (" + status +
                         "); quarantined";
            completeJob(std::move(job), std::move(res));
        } else if (job.deaths >= opts_.jobAttempts) {
            FleetResult res;
            res.outcome = FleetOutcome::kInternal;
            res.detail = "worker died executing job (" + status +
                         ") on all " + std::to_string(job.deaths) +
                         " attempts";
            completeJob(std::move(job), std::move(res));
        } else {
            // Head of the queue: a crashed job's retry should not sit
            // behind the backlog it did not cause.
            queue_.push_front(std::move(job));
        }
    }

    s.restarts++;
    restartsTotal_++;
    respawnsCtr().inc();
    if (s.killedByFleet) {
        // Cancel/deadline kill: the worker was healthy; no penalty.
        s.killedByFleet = false;
        s.state = Slot::kDown;
        s.eligibleAt = now;
        return;
    }
    s.crashStreak++;
    std::uint64_t delay =
        dist::backoffDelayMs(s.crashStreak, opts_.respawnBaseMs,
                             opts_.respawnCapMs,
                             static_cast<std::uint64_t>(idx));
    s.state = Slot::kBackoff;
    s.eligibleAt = now + std::chrono::milliseconds(delay);
    stsim_warn("fleet: worker %zu (pid %d) died (%s); respawn in "
               "%llu ms (streak %u)",
               idx, static_cast<int>(pid), status.c_str(),
               static_cast<unsigned long long>(delay), s.crashStreak);
}

void
WorkerFleet::dispatchQueued(clock_t_::time_point now)
{
    (void)now;
    // Settle queued jobs that can no longer run before burning a
    // worker on them: quarantined fingerprints and fired tokens.
    for (auto it = queue_.begin(); it != queue_.end();) {
        if (quarantined_.count(it->finger)) {
            poisonRejected_++;
            Job job = std::move(*it);
            it = queue_.erase(it);
            FleetResult res;
            res.outcome = FleetOutcome::kPoison;
            res.detail = "job fingerprint is quarantined";
            completeJob(std::move(job), std::move(res));
            continue;
        }
        if (it->token && it->token->cancelled()) {
            Job job = std::move(*it);
            it = queue_.erase(it);
            FleetResult res;
            res.outcome = FleetOutcome::kCancelled;
            res.detail = "cancelled before dispatch";
            completeJob(std::move(job), std::move(res));
            continue;
        }
        ++it;
    }

    for (std::size_t i = 0; i < slots_.size() && !queue_.empty();
         ++i) {
        Slot &s = slots_[i];
        if (s.state != Slot::kIdle)
            continue;
        Job job = std::move(queue_.front());
        queue_.pop_front();
        if (!writeAll(s.proc.stdinFd, job.line)) {
            // The worker died between replies; the job is blameless.
            queue_.push_front(std::move(job));
            handleDeath(i, clock_t_::now());
            continue;
        }
        s.state = Slot::kBusy;
        s.job = std::move(job);
    }
}

void
WorkerFleet::readSlot(std::size_t idx, clock_t_::time_point now)
{
    Slot &s = slots_[idx];
    if (s.proc.stdoutFd < 0)
        return;
    if (s.state != Slot::kSpawning && s.state != Slot::kIdle &&
        s.state != Slot::kBusy)
        return;

    bool eof = false;
    for (;;) {
        char buf[4096];
        ssize_t n = ::read(s.proc.stdoutFd, buf, sizeof buf);
        if (n > 0) {
            s.rdbuf.append(buf, static_cast<std::size_t>(n));
            if (s.rdbuf.size() > kMaxReplyBytes) {
                stsim_warn("fleet: worker %zu reply exceeds %zu "
                           "bytes; killing it",
                           idx, kMaxReplyBytes);
                killsCtr().inc();
                launcher_.kill(s.proc.pid);
                eof = true;
                break;
            }
            continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
            break;
        if (n < 0 && errno == EINTR)
            continue;
        eof = true; // 0 = worker exited; <0 = pipe error, same thing
        break;
    }

    // Settle complete lines first: a reply that raced the worker's
    // death (or our own cancel-kill) still counts -- exactly once.
    std::size_t pos;
    while ((pos = s.rdbuf.find('\n')) != std::string::npos) {
        std::string line = s.rdbuf.substr(0, pos);
        s.rdbuf.erase(0, pos + 1);
        if (line.empty())
            continue;
        if (s.state == Slot::kSpawning) {
            std::vector<serde::FlatField> fields;
            if (!serde::parseFlat(line, fields) || fields.empty() ||
                fields[0].key != "worker_hello") {
                stsim_warn("fleet: worker %zu sent garbage instead "
                           "of hello; killing it",
                           idx);
                killsCtr().inc();
                launcher_.kill(s.proc.pid);
                handleDeath(idx, now);
                return;
            }
            s.state = Slot::kIdle;
            continue;
        }
        if (s.state == Slot::kBusy && s.job) {
            Job job = std::move(*s.job);
            s.job.reset();
            s.state = Slot::kIdle;
            s.jobsServed++;
            s.crashStreak = 0;
            // The job ran to a reply, so its fingerprint is not on a
            // killing streak anymore.
            fingerKills_.erase(job.finger);
            FleetResult res;
            res.outcome = FleetOutcome::kReply;
            res.line = std::move(line);
            completeJob(std::move(job), std::move(res));
            continue;
        }
        // Idle chatter (e.g. a reply already settled as cancelled
        // after a fleet kill): drop it.
    }

    if (eof)
        handleDeath(idx, now);
}

void
WorkerFleet::supervisorMain()
{
    // Dispatch writes race worker deaths; with SIGPIPE blocked on
    // this thread they fail as EPIPE instead of killing the daemon.
    sigset_t ss;
    sigemptyset(&ss);
    sigaddset(&ss, SIGPIPE);
    ::pthread_sigmask(SIG_BLOCK, &ss, nullptr);

    std::vector<struct pollfd> fds;
    for (;;) {
        {
            std::lock_guard<std::mutex> lock(mu_);
            if (stopping_)
                break;
            auto now = clock_t_::now();

            // Respawns whose backoff has elapsed.
            for (Slot &s : slots_) {
                if ((s.state == Slot::kDown ||
                     s.state == Slot::kBackoff) &&
                    now >= s.eligibleAt)
                    spawnSlot(s);
            }

            // Spawn-wedge watchdog: exec'd but never said hello.
            for (std::size_t i = 0; i < slots_.size(); ++i) {
                Slot &s = slots_[i];
                if (s.state == Slot::kSpawning && now >= s.helloBy) {
                    stsim_warn("fleet: worker %zu (pid %d) never "
                               "said hello; respawning",
                               i, static_cast<int>(s.proc.pid));
                    killsCtr().inc();
                    launcher_.kill(s.proc.pid);
                    handleDeath(i, now);
                }
            }

            // Fired tokens on executing jobs: kill the worker, settle
            // the job as cancelled now. The EOF that follows finds no
            // job attached and respawns without a backoff penalty.
            for (std::size_t i = 0; i < slots_.size(); ++i) {
                Slot &s = slots_[i];
                if (s.state == Slot::kBusy && s.job && s.job->token &&
                    s.job->token->cancelled()) {
                    Job job = std::move(*s.job);
                    s.job.reset();
                    s.killedByFleet = true;
                    killsCtr().inc();
                    launcher_.kill(s.proc.pid);
                    FleetResult res;
                    res.outcome = FleetOutcome::kCancelled;
                    res.detail = "cancelled while executing";
                    completeJob(std::move(job), std::move(res));
                }
            }

            dispatchQueued(now);

            // Opportunistic reaps of deaths that outran kReapSpinMs.
            std::string st;
            for (std::size_t i = 0; i < unreaped_.size();) {
                if (launcher_.reap(unreaped_[i], st))
                    unreaped_.erase(unreaped_.begin() +
                                    static_cast<long>(i));
                else
                    ++i;
            }

            fds.clear();
            fds.push_back({wakePipe_[0], POLLIN, 0});
            for (const Slot &s : slots_) {
                if (s.proc.stdoutFd >= 0)
                    fds.push_back({s.proc.stdoutFd, POLLIN, 0});
            }
        }

        // 10ms tick bounds token-poll and backoff-expiry latency; the
        // wake pipe short-circuits it for submissions and stop().
        ::poll(fds.data(), static_cast<nfds_t>(fds.size()), 10);

        {
            std::lock_guard<std::mutex> lock(mu_);
            char buf[256];
            while (::read(wakePipe_[0], buf, sizeof buf) > 0) {
            }
            auto now = clock_t_::now();
            for (std::size_t i = 0; i < slots_.size(); ++i)
                readSlot(i, now);
        }
    }
    shutdownWorkers();
}

/**
 * Retirement: close every stdin (a healthy worker exits 0 on EOF),
 * give the fleet a moment, then SIGKILL stragglers and reap what can
 * be reaped. Outstanding jobs -- there should be none, the server
 * drains before stopping the fleet -- settle as cancelled.
 */
void
WorkerFleet::shutdownWorkers()
{
    std::lock_guard<std::mutex> lock(mu_);
    while (!queue_.empty()) {
        Job job = std::move(queue_.front());
        queue_.pop_front();
        FleetResult res;
        res.outcome = FleetOutcome::kCancelled;
        res.detail = "fleet is stopping";
        completeJob(std::move(job), std::move(res));
    }
    for (Slot &s : slots_) {
        if (s.job) {
            Job job = std::move(*s.job);
            s.job.reset();
            FleetResult res;
            res.outcome = FleetOutcome::kCancelled;
            res.detail = "fleet is stopping";
            completeJob(std::move(job), std::move(res));
        }
        if (s.proc.stdinFd >= 0) {
            ::close(s.proc.stdinFd);
            s.proc.stdinFd = -1;
        }
    }

    std::vector<pid_t> alive = unreaped_;
    unreaped_.clear();
    for (Slot &s : slots_) {
        if (s.proc.pid > 0)
            alive.push_back(s.proc.pid);
    }
    std::string st;
    auto sweep = [&] {
        for (std::size_t i = 0; i < alive.size();) {
            if (launcher_.reap(alive[i], st))
                alive.erase(alive.begin() + static_cast<long>(i));
            else
                ++i;
        }
    };
    auto grace = clock_t_::now() + std::chrono::milliseconds(500);
    while (!alive.empty() && clock_t_::now() < grace) {
        sweep();
        if (!alive.empty())
            std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    for (pid_t p : alive)
        launcher_.kill(p);
    auto hard = clock_t_::now() + std::chrono::seconds(2);
    while (!alive.empty() && clock_t_::now() < hard) {
        sweep();
        if (!alive.empty())
            std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    for (Slot &s : slots_) {
        closeSlotFds(s);
        s.proc.pid = -1;
        s.state = Slot::kDown;
    }
}

} // namespace serve
} // namespace stsim
