/**
 * @file
 * Calibration tool: runs the baseline machine on every benchmark
 * profile and reports the quantities the synthetic workloads must
 * reproduce (Table 2 targets) plus the power-model activity factors
 * used to derive PowerParams::calibratedDefaults().
 *
 * Usage: workload_calibration [instructions]
 */

#include <cstdio>
#include <cstdlib>

#include "common/table.hh"
#include "core/experiment.hh"
#include "core/simulator.hh"
#include "power/power_model.hh"
#include "trace/profile.hh"

#include <iostream>

using namespace stsim;

int
main(int argc, char **argv)
{
    std::uint64_t insts = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                                   : 1'000'000;

    TextTable table({"bench", "IPC", "missRate", "target", "brFrac",
                     "tgtBr", "wrongFetch", "wrDisp", "wrIssue",
                     "il1MR", "dl1MR", "power W", "wasteE%"});
    table.setTitle("Workload calibration vs Table 2 targets");

    std::array<double, kNumPUnits> act{};
    std::array<double, kNumPUnits> energyShare{};
    double total_energy = 0.0;

    for (const auto &prof : specProfiles()) {
        SimConfig cfg;
        cfg.benchmark = prof.name;
        cfg.maxInstructions = insts;
        Experiment::byName("baseline").applyTo(cfg);

        Simulator sim(cfg);
        SimResults r = sim.run();

        double br_frac =
            static_cast<double>(r.core.committedCondBranches) /
            r.core.committedInsts;

        table.addRow({prof.name, TextTable::num(r.ipc, 3),
                      TextTable::pct(100 * r.condMissRate),
                      TextTable::pct(100 * prof.targetMissRate),
                      TextTable::pct(100 * br_frac),
                      TextTable::pct(100 * prof.condBranchFrac),
                      TextTable::pct(100 * r.core.wrongPathFetchFrac()),
                      TextTable::pct(
                          100.0 * r.core.dispatchedWrongPath /
                          std::max<Counter>(1, r.core.dispatchedInsts)),
                      TextTable::pct(
                          100.0 * r.core.issuedWrongPath /
                          std::max<Counter>(1, r.core.issuedInsts)),
                      TextTable::pct(100 * r.il1MissRate),
                      TextTable::pct(100 * r.dl1MissRate),
                      TextTable::num(r.avgPowerW, 1),
                      TextTable::pct(100 * r.wastedEnergyFrac())});

        for (PUnit u : kAllPUnits) {
            auto i = static_cast<std::size_t>(u);
            act[i] += sim.power().meanActivity(u);
            energyShare[i] += r.unitEnergyJ[i];
        }
        total_energy += r.energyJ;
    }
    table.print(std::cout);

    std::printf("\nPer-unit mean activity factors and energy shares "
                "(average of 8 benchmarks):\n");
    for (PUnit u : kAllPUnits) {
        auto i = static_cast<std::size_t>(u);
        std::printf("  %-10s act=%.3f  share=%.1f%%\n", punitName(u),
                    act[i] / 8.0, 100.0 * energyShare[i] / total_energy);
    }
    std::printf("\nTable 1 target shares: icache 10.0 bpred 3.8 "
                "regfile 1.6 rename 1.1 window 18.2 lsq 1.9 alu 8.7 "
                "dcache 10.6 dcache2 0.7 resultbus 9.5 clock 33.8 "
                "(56.4 W total)\n");
    return 0;
}
