/**
 * @file
 * Calibration tool: runs the baseline machine on every benchmark
 * profile and reports the quantities the synthetic workloads must
 * reproduce (Table 2 targets) plus the power-model activity factors
 * used to derive PowerParams::calibratedDefaults().
 *
 * The eight runs execute as one parallel wave through the streaming
 * results sink (the same commit path the sharded runner uses); with
 * --out the full per-benchmark SimResults also stream to disk as
 * JSONL (or CSV when FILE ends in .csv).
 *
 * Usage: workload_calibration [instructions] [--out FILE]
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include <iostream>

#include "common/table.hh"
#include "core/experiment.hh"
#include "core/parallel_harness.hh"
#include "core/results_sink.hh"
#include "trace/profile.hh"

using namespace stsim;

int
main(int argc, char **argv)
{
    std::uint64_t insts = 1'000'000;
    std::string out_path;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--out")) {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "--out needs a value\n");
                return 2;
            }
            out_path = argv[++i];
        } else if (argv[i][0] == '-') {
            std::fprintf(stderr, "unknown flag %s\n", argv[i]);
            return 2;
        } else {
            char *end = nullptr;
            insts = std::strtoull(argv[i], &end, 10);
            if (!end || *end != '\0' || insts == 0) {
                std::fprintf(stderr, "bad instruction count '%s'\n",
                             argv[i]);
                return 2;
            }
        }
    }

    std::vector<SimJob> jobs;
    for (const auto &prof : specProfiles()) {
        SimJob j;
        j.cfg.benchmark = prof.name;
        j.cfg.maxInstructions = insts;
        Experiment::byName("baseline").applyTo(j.cfg);
        j.experiment = "baseline";
        jobs.push_back(std::move(j));
    }

    std::unique_ptr<ResultsSink> file_sink =
        out_path.empty()
            ? std::unique_ptr<ResultsSink>(
                  std::make_unique<NullResultsSink>())
            : openSink(out_path);

    TextTable table({"bench", "IPC", "missRate", "target", "brFrac",
                     "tgtBr", "wrongFetch", "wrDisp", "wrIssue",
                     "il1MR", "dl1MR", "power W", "wasteE%"});
    table.setTitle("Workload calibration vs Table 2 targets");

    std::array<double, kNumPUnits> act{};
    std::array<double, kNumPUnits> energyShare{};
    double total_energy = 0.0;

    // Fold each result into the report as it commits; nothing but the
    // table rows and the per-unit accumulators stays in memory.
    class CalibrationTee : public TeeSink
    {
      public:
        CalibrationTee(ResultsSink &inner, TextTable &table,
                       std::array<double, kNumPUnits> &act,
                       std::array<double, kNumPUnits> &share,
                       double &total_energy)
            : TeeSink(inner), table_(table), act_(act), share_(share),
              totalEnergy_(total_energy)
        {
        }

      protected:
        void
        onResult(std::uint64_t, const SimResults &r) override
        {
            const BenchmarkProfile &prof = findProfile(r.benchmark);
            double br_frac =
                static_cast<double>(r.core.committedCondBranches) /
                r.core.committedInsts;
            table_.addRow(
                {prof.name, TextTable::num(r.ipc, 3),
                 TextTable::pct(100 * r.condMissRate),
                 TextTable::pct(100 * prof.targetMissRate),
                 TextTable::pct(100 * br_frac),
                 TextTable::pct(100 * prof.condBranchFrac),
                 TextTable::pct(100 * r.core.wrongPathFetchFrac()),
                 TextTable::pct(
                     100.0 * r.core.dispatchedWrongPath /
                     std::max<Counter>(1, r.core.dispatchedInsts)),
                 TextTable::pct(
                     100.0 * r.core.issuedWrongPath /
                     std::max<Counter>(1, r.core.issuedInsts)),
                 TextTable::pct(100 * r.il1MissRate),
                 TextTable::pct(100 * r.dl1MissRate),
                 TextTable::num(r.avgPowerW, 1),
                 TextTable::pct(100 * r.wastedEnergyFrac())});
            for (PUnit u : kAllPUnits) {
                auto i = static_cast<std::size_t>(u);
                act_[i] += r.unitActivity[i];
                share_[i] += r.unitEnergyJ[i];
            }
            totalEnergy_ += r.energyJ;
        }

      private:
        TextTable &table_;
        std::array<double, kNumPUnits> &act_;
        std::array<double, kNumPUnits> &share_;
        double &totalEnergy_;
    };

    CalibrationTee tee(*file_sink, table, act, energyShare,
                       total_energy);
    runJobs(jobs, tee);
    table.print(std::cout);

    std::printf("\nPer-unit mean activity factors and energy shares "
                "(average of 8 benchmarks):\n");
    for (PUnit u : kAllPUnits) {
        auto i = static_cast<std::size_t>(u);
        std::printf("  %-10s act=%.3f  share=%.1f%%\n", punitName(u),
                    act[i] / 8.0, 100.0 * energyShare[i] / total_energy);
    }
    std::printf("\nTable 1 target shares: icache 10.0 bpred 3.8 "
                "regfile 1.6 rename 1.1 window 18.2 lsq 1.9 alu 8.7 "
                "dcache 10.6 dcache2 0.7 resultbus 9.5 clock 33.8 "
                "(56.4 W total)\n");
    return 0;
}
