/**
 * @file
 * Quickstart: simulate one benchmark on the baseline core and under
 * Selective Throttling's headline configuration (C2), then print the
 * paper's four metrics.
 *
 * Usage: quickstart [benchmark] [instructions]
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/experiment.hh"
#include "core/simulator.hh"

using namespace stsim;

int
main(int argc, char **argv)
{
    std::string bench = argc > 1 ? argv[1] : "go";
    std::uint64_t insts = argc > 2 ? std::strtoull(argv[2], nullptr, 10)
                                   : 1'000'000;

    SimConfig cfg;
    cfg.benchmark = bench;
    cfg.maxInstructions = insts;

    // Baseline: 8-wide, 14-stage core, 8 KB gshare, no throttling.
    SimConfig base_cfg = cfg;
    Experiment::byName("baseline").applyTo(base_cfg);
    SimResults base = Simulator(base_cfg).run();

    // C2: VLC -> fetch stall; LC -> fetch/4 + selection throttling.
    SimConfig c2_cfg = cfg;
    Experiment::byName("C2").applyTo(c2_cfg);
    SimResults c2 = Simulator(c2_cfg).run();

    RelativeMetrics m = RelativeMetrics::compute(base, c2);

    std::printf("benchmark            : %s (%llu instructions)\n",
                bench.c_str(),
                static_cast<unsigned long long>(insts));
    std::printf("baseline IPC         : %.3f\n", base.ipc);
    std::printf("baseline power       : %.1f W\n", base.avgPowerW);
    std::printf("baseline energy      : %.4f J\n", base.energyJ);
    std::printf("gshare miss rate     : %.1f%%\n",
                100.0 * base.condMissRate);
    std::printf("wrong-path fetch     : %.1f%%\n",
                100.0 * base.core.wrongPathFetchFrac());
    std::printf("mis-speculation power: %.1f%% of total\n",
                100.0 * base.wastedEnergyFrac());
    std::printf("\nSelective Throttling C2 vs baseline:\n");
    std::printf("  speedup            : %.3f\n", m.speedup);
    std::printf("  power savings      : %.1f%%\n", m.powerSavings);
    std::printf("  energy savings     : %.1f%%\n", m.energySavings);
    std::printf("  E-D improvement    : %.1f%%\n", m.edImprovement);
    std::printf("  C2 SPEC / PVN      : %.0f%% / %.0f%%\n",
                100.0 * c2.spec, 100.0 * c2.pvn);
    return 0;
}
