/**
 * @file
 * Profile auto-tuner: iteratively adjusts each benchmark profile's
 * blockLenScale (dynamic branch density) and fracChaotic (gshare
 * misprediction rate) until the measured values match the Table 2
 * targets, then prints the constants to bake into profile.cc.
 *
 * The two knobs interact through CFG re-randomization, so closed-form
 * correction is unreliable; damped measurement-driven iteration
 * converges in a handful of rounds. Each benchmark tunes
 * independently, so the eight tuning loops run concurrently on the
 * RunPool (STSIM_JOBS workers) and report in deterministic order.
 *
 * Usage: profile_autotune [instructions] [rounds]
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/experiment.hh"
#include "core/run_pool.hh"
#include "core/simulator.hh"
#include "trace/profile.hh"

using namespace stsim;

namespace
{

struct Measured
{
    double missRate;
    double brFrac;
    double ipc;
    double dl1;
};

Measured
measure(const BenchmarkProfile &prof, std::uint64_t insts)
{
    SimConfig cfg;
    cfg.customProfile = prof;
    cfg.maxInstructions = insts;
    cfg.warmupInstructions = std::min<std::uint64_t>(200'000, insts / 2);
    Experiment::byName("baseline").applyTo(cfg);
    SimResults r = Simulator(cfg).run();
    return {r.condMissRate,
            static_cast<double>(r.core.committedCondBranches) /
                static_cast<double>(r.core.committedInsts),
            r.ipc, r.dl1MissRate};
}

/** Tune one profile's knobs; pure function of (profile, args). */
BenchmarkProfile
tuneOne(const BenchmarkProfile &orig, std::uint64_t insts, int rounds)
{
    BenchmarkProfile p = orig;
    BenchmarkProfile best = p;
    double best_err = 1e9;

    for (int it = 0; it < rounds; ++it) {
        Measured m = measure(p, insts);
        double mr_err = (m.missRate - p.targetMissRate) /
                        p.targetMissRate;
        double br_err = (m.brFrac - p.condBranchFrac) /
                        p.condBranchFrac;
        double err = mr_err * mr_err + br_err * br_err;
        if (err < best_err) {
            best_err = err;
            best = p;
        }
        // Damped multiplicative update: brFrac ~ 1/blockLenScale;
        // missRate responds ~0.45 per unit of fracChaotic.
        double s = m.brFrac / p.condBranchFrac;
        p.blockLenScale = std::clamp(
            p.blockLenScale * (1.0 + 0.7 * (s - 1.0)), 0.5, 3.0);
        double delta = (p.targetMissRate - m.missRate) / 0.45;
        // Keep a floor of persistently-unpredictable branches (the
        // character the confidence estimators key on); once the
        // chaotic knob saturates, move the biased-miss range.
        double want = p.fracChaotic + 0.7 * delta;
        p.fracChaotic = std::clamp(want, 0.02, 0.6);
        if (want < 0.02 || (want > p.fracChaotic && delta < 0)) {
            double k = std::clamp(
                1.0 + 0.7 * (p.targetMissRate / m.missRate - 1.0),
                0.6, 1.4);
            p.biasedMissMin =
                std::clamp(p.biasedMissMin * k, 0.005, 0.4);
            p.biasedMissMax =
                std::clamp(p.biasedMissMax * k, 0.01, 0.45);
        }
    }
    return best;
}

} // namespace

int
main(int argc, char **argv)
{
    std::uint64_t insts = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                                   : 400'000;
    int rounds = argc > 2 ? std::atoi(argv[2]) : 8;

    const std::vector<BenchmarkProfile> &profiles = specProfiles();
    std::vector<BenchmarkProfile> tuned(profiles.size());
    std::vector<Measured> measured(profiles.size());

    // Each profile's tuning loop is sequential (damped iteration) but
    // the eight profiles are independent: one pool wave, results
    // committed by index so the report order is deterministic.
    RunPool pool;
    pool.parallelFor(profiles.size(), [&](std::size_t i) {
        tuned[i] = tuneOne(profiles[i], insts, rounds);
        measured[i] = measure(tuned[i], insts);
    });

    for (std::size_t i = 0; i < profiles.size(); ++i) {
        const BenchmarkProfile &best = tuned[i];
        const Measured &m = measured[i];
        std::printf("%-9s miss %.1f%% (tgt %.1f)  brFrac %.1f%% "
                    "(tgt %.1f)  IPC %.2f  dl1 %.1f%%  ->  "
                    "fracChaotic = %.4f; blockLenScale = %.3f; "
                    "biasedMiss = [%.4f, %.4f];\n",
                    best.name.c_str(), 100 * m.missRate,
                    100 * best.targetMissRate, 100 * m.brFrac,
                    100 * best.condBranchFrac, m.ipc, 100 * m.dl1,
                    best.fracChaotic, best.blockLenScale,
                    best.biasedMissMin, best.biasedMissMax);
    }
    return 0;
}
