/**
 * @file
 * Policy explorer: run any named experiment (or a custom policy built
 * from command-line switches) on chosen benchmarks and print the four
 * paper metrics against the cached baseline.
 *
 * Usage:
 *   policy_explorer [--exp NAME[,NAME...]] [--bench NAME|all]
 *                   [--insts N] [--bpru inc,dec,alloc] [--depth D]
 *                   [--out FILE] [--format jsonl|csv]
 *
 * A comma-separated experiment list runs as one parallel matrix wave
 * (STSIM_JOBS workers). With --out, every full SimResults is streamed
 * to FILE through the results sink as jobs complete (JSONL by default,
 * or CSV; .csv extensions auto-select CSV) -- the tables printed to
 * stdout stay the same.
 *
 * Examples:
 *   policy_explorer --exp C2 --bench all
 *   policy_explorer --exp A5,C2,PG --bench all --out sweep.csv
 *   policy_explorer --exp A5 --bench go --insts 2000000
 *   policy_explorer --exp C2 --bpru 4,1,3
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/table.hh"
#include "core/harness.hh"
#include "core/parallel_harness.hh"
#include "core/results_sink.hh"

using namespace stsim;

int
main(int argc, char **argv)
{
    std::string exp_name = "C2";
    std::string bench = "all";
    std::string out_path;
    std::string format;
    std::uint64_t insts = 0;
    unsigned depth = 14;
    BpruEstimator::Params bpru{};

    for (int i = 1; i < argc; ++i) {
        auto need = [&](const char *flag) {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n", flag);
                std::exit(2);
            }
            return argv[++i];
        };
        if (!std::strcmp(argv[i], "--exp")) {
            exp_name = need("--exp");
        } else if (!std::strcmp(argv[i], "--bench")) {
            bench = need("--bench");
        } else if (!std::strcmp(argv[i], "--insts")) {
            insts = std::strtoull(need("--insts"), nullptr, 10);
        } else if (!std::strcmp(argv[i], "--depth")) {
            depth = static_cast<unsigned>(
                std::strtoul(need("--depth"), nullptr, 10));
        } else if (!std::strcmp(argv[i], "--out")) {
            out_path = need("--out");
        } else if (!std::strcmp(argv[i], "--format")) {
            format = need("--format");
        } else if (!std::strcmp(argv[i], "--bpru")) {
            unsigned inc, dec, alloc;
            if (std::sscanf(need("--bpru"), "%u,%u,%u", &inc, &dec,
                            &alloc) != 3) {
                std::fprintf(stderr, "--bpru wants inc,dec,alloc\n");
                return 2;
            }
            bpru.missInc = inc;
            bpru.correctDec = dec;
            bpru.allocValue = alloc;
        } else {
            std::fprintf(stderr, "unknown flag %s\n", argv[i]);
            return 2;
        }
    }

    SimConfig base;
    if (insts)
        base.maxInstructions = insts;
    base.pipelineDepth = depth;
    base.bpruParams = bpru;
    Harness h(base);

    // --exp accepts a comma-separated list; the whole matrix runs as
    // one parallel wave.
    std::vector<Experiment> exps;
    std::size_t pos = 0;
    while (pos <= exp_name.size()) {
        std::size_t comma = exp_name.find(',', pos);
        if (comma == std::string::npos)
            comma = exp_name.size();
        if (comma > pos)
            exps.push_back(
                Experiment::byName(exp_name.substr(pos, comma - pos)));
        pos = comma + 1;
    }
    if (exps.empty()) {
        std::fprintf(stderr, "--exp needs at least one name\n");
        return 2;
    }

    if (out_path.empty() && !format.empty()) {
        std::fprintf(stderr, "--format requires --out\n");
        return 2;
    }

    // Optional streaming sink: full per-run results go to disk as
    // jobs complete; only the metric tables stay in memory.
    std::unique_ptr<ResultsSink> sink =
        out_path.empty()
            ? std::unique_ptr<ResultsSink>(
                  std::make_unique<NullResultsSink>())
            : openSink(out_path, format);

    auto addRow = [](TextTable &t, const std::string &name,
                     const RelativeMetrics &m) {
        t.addRow({name, TextTable::num(m.speedup, 3),
                  TextTable::pct(m.powerSavings),
                  TextTable::pct(m.energySavings),
                  TextTable::pct(m.edImprovement)});
    };

    if (bench == "all") {
        std::vector<Harness::SuiteRows> tables = h.runMatrix(exps, *sink);
        for (std::size_t i = 0; i < exps.size(); ++i) {
            TextTable t({"bench", "speedup", "power sav", "energy sav",
                         "E-D impr"});
            t.setTitle("Experiment " + exps[i].name + " (" +
                       exps[i].description + ")");
            for (const auto &[name, m] : tables[i])
                addRow(t, name, m);
            t.print(std::cout);
            if (i + 1 < exps.size())
                std::cout << "\n";
        }
    } else {
        // Single-benchmark runs stream through the same commit path:
        // one wave of jobs, each result written to the sink before its
        // metrics row is derived.
        std::vector<SimJob> jobs;
        for (const Experiment &exp : exps) {
            SimJob j;
            j.cfg = std::as_const(h).baseConfig();
            j.cfg.benchmark = bench;
            exp.applyTo(j.cfg);
            j.experiment = exp.name;
            jobs.push_back(std::move(j));
        }
        const SimResults &base_r = h.baseline(bench);
        class SingleBenchTee : public TeeSink
        {
          public:
            SingleBenchTee(ResultsSink &inner, const SimResults &base,
                           std::vector<RelativeMetrics> &metrics)
                : TeeSink(inner), base_(base), metrics_(metrics)
            {
            }

          protected:
            void
            onResult(std::uint64_t, const SimResults &r) override
            {
                metrics_.push_back(RelativeMetrics::compute(base_, r));
            }

          private:
            const SimResults &base_;
            std::vector<RelativeMetrics> &metrics_;
        };
        std::vector<RelativeMetrics> metrics;
        SingleBenchTee tee(*sink, base_r, metrics);
        runJobs(jobs, tee);
        for (std::size_t i = 0; i < exps.size(); ++i) {
            TextTable t({"bench", "speedup", "power sav", "energy sav",
                         "E-D impr"});
            t.setTitle("Experiment " + exps[i].name + " (" +
                       exps[i].description + ")");
            addRow(t, bench, metrics[i]);
            t.print(std::cout);
        }
    }
    return 0;
}
