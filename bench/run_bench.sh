#!/usr/bin/env bash
# Run the google-benchmark microbenchmarks and emit a JSON record so
# successive PRs have a perf trajectory to compare against.
#
# Configures and builds the build tree itself (Release) so a recorded
# baseline can never silently come from an unoptimized build -- the
# previous BENCH_microbench.json was recorded against a debug
# benchmark library, which is exactly the failure mode this guards.
#
# Usage: bench/run_bench.sh [build-dir] [extra benchmark args...]
#        bench/run_bench.sh --serve [build-dir] [loadgen bench args...]
#
# Output: BENCH_microbench.json in the current directory -- or, with
# --serve, BENCH_serve.json (sustained jobs/sec and latency
# percentiles through a live stsim_serve daemon).
set -euo pipefail

serve_mode=0
if [[ "${1:-}" == "--serve" ]]; then
    serve_mode=1
    shift
fi

build_dir="${1:-build}"
shift || true

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"

# Configure (idempotent) and build Release. An existing build tree
# with a different build type is reconfigured rather than trusted.
cmake -B "${build_dir}" -S "${repo_root}" \
    -DCMAKE_BUILD_TYPE=Release > /dev/null
if [[ "${serve_mode}" == 1 ]]; then
    cmake --build "${build_dir}" -j"$(nproc)" \
        --target stsim_runner stsim_serve stsim_loadgen
else
    cmake --build "${build_dir}" -j"$(nproc)" \
        --target microbench stsim_runner
fi

# Fail loudly unless the tree we are about to measure is Release.
build_type="$(grep -E '^CMAKE_BUILD_TYPE:' \
    "${build_dir}/CMakeCache.txt" | cut -d= -f2)"
if [[ "${build_type}" != "Release" ]]; then
    echo "error: ${build_dir} is configured as '${build_type}'," >&2
    echo "refusing to record benchmark numbers from a non-Release" >&2
    echo "build. Reconfigure with -DCMAKE_BUILD_TYPE=Release." >&2
    exit 1
fi

if [[ "${serve_mode}" == 1 ]]; then
    # Serve throughput: a short closed-loop load against a live
    # daemon over a Unix socket, recorded as BENCH_serve.json (one
    # JSONL row for the in-process thread pool, one for the
    # process-isolated --isolate fleet, so the isolation overhead has
    # a recorded trajectory). Each daemon is SIGTERMed afterwards and
    # must drain to exit 0 -- a bench run that leaves a wedged server
    # is a failed bench run.
    tmp="$(mktemp -d)"
    server_pid=
    cleanup() {
        if [[ -n "${server_pid}" ]] && \
           kill -0 "${server_pid}" 2>/dev/null; then
            kill -KILL "${server_pid}" 2>/dev/null || true
        fi
        rm -rf "${tmp}"
    }
    trap cleanup EXIT

    "${build_dir}/stsim_runner" manifest --suite golden \
        --insts 3000 --warmup 500 --out "${tmp}/manifest.jsonl"

    # bench_row LABEL OUT [extra serve args...]
    bench_row() {
        local label="$1" out="$2"
        shift 2
        local sock="${tmp}/serve-${label}.sock"
        "${build_dir}/stsim_serve" --unix "${sock}" "$@" \
            2> "${tmp}/server-${label}.log" &
        server_pid=$!
        "${build_dir}/stsim_loadgen" ping --unix "${sock}" --tries 100
        "${build_dir}/stsim_loadgen" bench --unix "${sock}" \
            --manifest "${tmp}/manifest.jsonl" \
            --clients 4 --duration-sec 5 \
            --label "${label}" --json "${out}" "${loadgen_args[@]}"
        kill -TERM "${server_pid}"
        if ! wait "${server_pid}"; then
            echo "error: stsim_serve (${label}) did not drain" >&2
            echo "cleanly; log:" >&2
            cat "${tmp}/server-${label}.log" >&2
            exit 1
        fi
        server_pid=
    }

    loadgen_args=("$@")
    bench_row stsim_serve_loadgen "${tmp}/row-inproc.json"
    bench_row stsim_serve_loadgen_isolate "${tmp}/row-isolate.json" \
        --isolate
    cat "${tmp}/row-inproc.json" "${tmp}/row-isolate.json" \
        > BENCH_serve.json
    echo "wrote BENCH_serve.json"
    exit 0
fi

micro="${build_dir}/microbench"
if [[ ! -x "${micro}" ]]; then
    echo "error: ${micro} not found or not executable." >&2
    echo "(microbench needs google-benchmark or the vendored stub:" >&2
    echo " configure with -DSTSIM_USE_STUB_BENCHMARK=ON offline)" >&2
    exit 1
fi

"${micro}" \
    --benchmark_out=BENCH_microbench.json \
    --benchmark_out_format=json \
    "$@"

# The benchmark library records its own build flavor. Distro packages
# (e.g. Debian's libbenchmark) ship without NDEBUG and report
# "debug" even though the repo build above is Release; warn so a
# recorded baseline documents the harness it came from. Numbers meant
# for BENCH_microbench.json should come from a Release-built library
# (FetchContent) or the vendored stub (-DSTSIM_USE_STUB_BENCHMARK=ON),
# both of which report "release".
if grep -q '"library_build_type": "debug"' BENCH_microbench.json; then
    echo "warning: the benchmark *library* reports a debug build" >&2
    echo "(the stsim build itself is Release). Prefer a release" >&2
    echo "libbenchmark or -DSTSIM_USE_STUB_BENCHMARK=ON when" >&2
    echo "recording baselines." >&2
fi

# Warmup-memoization sweep: one warmup-heavy job at six run lengths
# (all one warmup class), dumped from scratch and with
# --memoize-warmup. The memoized wave runs the warmup once instead of
# six times; both wall-clocks land in BENCH_microbench.json as
# warmup_sweep/{scratch,memoized} rows so the win has a recorded
# trajectory alongside the kernel microbenchmarks.
sweep_tmp="$(mktemp -d)"
trap 'rm -rf "${sweep_tmp}"' EXIT
for insts in 2000 4000 6000 8000 10000 12000; do
    "${build_dir}/stsim_runner" manifest --suite golden \
        --insts "${insts}" --warmup 50000 2>/dev/null | head -n 1
done > "${sweep_tmp}/sweep.jsonl"

# time_dump_ms EXTRA... -> milliseconds on stdout
time_dump_ms() {
    local t0 t1
    t0=$(date +%s%N)
    "${build_dir}/stsim_runner" dump \
        --manifest "${sweep_tmp}/sweep.jsonl" --jobs 2 "$@" \
        --out "${sweep_tmp}/out.jsonl" 2>/dev/null
    t1=$(date +%s%N)
    echo $(( (t1 - t0) / 1000000 ))
}

scratch_ms=$(time_dump_ms)
cp "${sweep_tmp}/out.jsonl" "${sweep_tmp}/scratch.jsonl"
memo_ms=$(time_dump_ms --memoize-warmup)
cmp "${sweep_tmp}/scratch.jsonl" "${sweep_tmp}/out.jsonl" || {
    echo "error: memoized sweep output differs from scratch" >&2
    exit 1
}

python3 - "${scratch_ms}" "${memo_ms}" <<'EOF'
import json, sys
scratch_ms, memo_ms = float(sys.argv[1]), float(sys.argv[2])
with open("BENCH_microbench.json") as f:
    doc = json.load(f)
for name, ms in (("warmup_sweep/scratch", scratch_ms),
                 ("warmup_sweep/memoized", memo_ms)):
    doc["benchmarks"].append({
        "name": name, "run_name": name, "run_type": "iteration",
        "repetitions": 1, "repetition_index": 0, "threads": 1,
        "iterations": 1, "real_time": ms, "cpu_time": ms,
        "time_unit": "ms",
    })
with open("BENCH_microbench.json", "w") as f:
    json.dump(doc, f, indent=2)
EOF
echo "warmup sweep: scratch ${scratch_ms} ms," \
     "memoized ${memo_ms} ms (6 jobs, 1 warmup class)"

echo "wrote BENCH_microbench.json"
