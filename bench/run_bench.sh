#!/usr/bin/env bash
# Run the google-benchmark microbenchmarks and emit a JSON record so
# successive PRs have a perf trajectory to compare against.
#
# Usage: bench/run_bench.sh [build-dir] [extra benchmark args...]
#
# Output: BENCH_microbench.json in the current directory.
set -euo pipefail

build_dir="${1:-build}"
shift || true

micro="${build_dir}/microbench"
if [[ ! -x "${micro}" ]]; then
    echo "error: ${micro} not found or not executable." >&2
    echo "Build first: cmake -B ${build_dir} -S . && cmake --build ${build_dir} -j" >&2
    echo "(microbench needs google-benchmark; see CMake warnings)" >&2
    exit 1
fi

"${micro}" \
    --benchmark_out=BENCH_microbench.json \
    --benchmark_out_format=json \
    "$@"

echo "wrote BENCH_microbench.json"
