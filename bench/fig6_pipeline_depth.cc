/**
 * @file
 * Reproduces Figure 6: pipeline-depth sensitivity of the best
 * configuration (C2), sweeping total depth from 6 to 28 stages.
 *
 * Paper reference: performance degradation stays between 5% and 6%
 * at every depth while power/energy savings and E-D improvement grow
 * with depth: energy savings 11% (6 stages) -> 17.2% (28 stages);
 * E-D improvements 5.4% / 8.5% / 12% at 6 / 14 / 28 stages.
 */

#include <iostream>

#include "bench_common.hh"

using namespace stsim;
using namespace stsim::bench;

int
main()
{
    TextTable t(metricHeader("depth"));
    t.setTitle("Figure 6: pipeline-depth sensitivity of C2 "
               "(average of 8 benchmarks)");

    Experiment c2 = Experiment::byName("C2");
    for (unsigned depth = 6; depth <= 28; depth += 2) {
        SimConfig cfg = benchConfig();
        cfg.pipelineDepth = depth;
        Harness h(cfg);
        // Each depth is one parallel wave: runSuite routes through the
        // matrix engine, so the 8 baselines and 8 C2 runs fan out over
        // STSIM_JOBS workers.
        auto rows = h.runSuite(c2);
        t.addRow(metricCells(std::to_string(depth),
                             rows.back().second));
    }
    t.addSeparator();
    t.addRow({"paper 6", "~0.95", "-", "11%", "5.4%"});
    t.addRow({"paper 14", "~0.95", "-", "13.5%", "8.5%"});
    t.addRow({"paper 28", "~0.94", "-", "17.2%", "12%"});
    t.print(std::cout);
    return 0;
}
