/**
 * @file
 * Shared defaults for the paper-reproduction bench binaries: a common
 * run length (overridable via REPRO_INSTRUCTIONS) and table helpers.
 */

#ifndef STSIM_BENCH_BENCH_COMMON_HH
#define STSIM_BENCH_BENCH_COMMON_HH

#include <string>
#include <vector>

#include "common/table.hh"
#include "core/harness.hh"
#include "core/sim_config.hh"
#include "core/sim_results.hh"

namespace stsim::bench
{

/** Default measured instructions per run for the bench harnesses. */
inline constexpr std::uint64_t kBenchInstructions = 500'000;

/** Base configuration all bench binaries start from. */
inline SimConfig
benchConfig()
{
    SimConfig cfg;
    cfg.maxInstructions = kBenchInstructions;
    cfg.warmupInstructions = 150'000;
    cfg.applyEnvOverrides();
    return cfg;
}

/** Append the paper's four metrics as table cells. */
inline std::vector<std::string>
metricCells(const std::string &label, const RelativeMetrics &m)
{
    return {label, TextTable::num(m.speedup, 3),
            TextTable::pct(m.powerSavings),
            TextTable::pct(m.energySavings),
            TextTable::pct(m.edImprovement)};
}

/** Standard header for speedup/power/energy/E-D tables. */
inline std::vector<std::string>
metricHeader(const std::string &first)
{
    return {first, "speedup", "power sav", "energy sav", "E-D impr"};
}

} // namespace stsim::bench

#endif // STSIM_BENCH_BENCH_COMMON_HH
