/**
 * @file
 * Reproduces Figure 4: the decode throttling heuristic alone (B1-B3)
 * and combined with fetch throttling (B4-B8), plus Pipeline Gating
 * (B9). In every experiment a VLC branch stalls the fetch unit.
 *
 * Paper reference (averages): B3 slows ~12% (E-D -5.0%); B2 saves
 * more energy (8.2%) than B1 (7.1%); B7 tops A5's energy savings
 * (11.9% vs 11.7%) at lower E-D improvement (7.8% vs 8.6%).
 */

#include <iostream>

#include "bench_common.hh"

using namespace stsim;
using namespace stsim::bench;

int
main()
{
    Harness h(benchConfig());

    TextTable avg(metricHeader("experiment"));
    avg.setTitle("Figure 4 summary (averages over 8 benchmarks)");

    // One parallel wave for the whole figure (STSIM_JOBS workers).
    std::vector<Experiment> exps = Experiment::figure4Series();
    std::vector<Harness::SuiteRows> tables = h.runMatrix(exps);

    for (std::size_t i = 0; i < exps.size(); ++i) {
        TextTable t(metricHeader("benchmark"));
        t.setTitle("Figure 4 / " + exps[i].name + ": " +
                   exps[i].description);
        for (const auto &[bench, m] : tables[i])
            t.addRow(metricCells(bench, m));
        t.print(std::cout);
        std::cout << "\n";
        avg.addRow(metricCells(exps[i].name, tables[i].back().second));
    }
    avg.print(std::cout);
    return 0;
}
