/**
 * @file
 * Reproduces Figure 5: selection throttling added to the best fetch/
 * decode configurations: C1/C2, C3/C4, C5/C6 (each pair without/with
 * the no-select heuristic) plus Pipeline Gating (C7).
 *
 * Paper reference (averages): the no-select heuristic adds ~2%
 * energy savings for ~2% extra slowdown and leaves E-D roughly flat;
 * C2 is the headline configuration with 13.5% energy savings (19.2%
 * for go) and 8.5% E-D improvement vs Pipeline Gating's 11.0%/3.5%.
 */

#include <iostream>

#include "bench_common.hh"

using namespace stsim;
using namespace stsim::bench;

int
main()
{
    Harness h(benchConfig());

    TextTable avg(metricHeader("experiment"));
    avg.setTitle("Figure 5 summary (averages over 8 benchmarks)");

    // One parallel wave for the whole figure (STSIM_JOBS workers).
    std::vector<Experiment> exps = Experiment::figure5Series();
    std::vector<Harness::SuiteRows> tables = h.runMatrix(exps);

    for (std::size_t i = 0; i < exps.size(); ++i) {
        TextTable t(metricHeader("benchmark"));
        t.setTitle("Figure 5 / " + exps[i].name + ": " +
                   exps[i].description);
        for (const auto &[bench, m] : tables[i])
            t.addRow(metricCells(bench, m));
        t.print(std::cout);
        std::cout << "\n";
        avg.addRow(metricCells(exps[i].name, tables[i].back().second));
    }
    avg.addSeparator();
    avg.addRow({"paper C2", "0.95", "-", "13.5%", "8.5%"});
    avg.addRow({"paper PG", "0.92", "-", "11.0%", "3.5%"});
    avg.print(std::cout);
    return 0;
}
