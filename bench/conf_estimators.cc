/**
 * @file
 * Reproduces §4.3's confidence-estimator quality numbers: the
 * BPRU-style estimator should land near SPEC = 60% / PVN = 45% and the
 * JRS estimator (MDC threshold 12) near SPEC = 90% / PVN = 24%,
 * averaged over the eight benchmarks.
 *
 * With --scan, sweeps the BPRU update-rule parameters and prints the
 * SPEC/PVN landscape (used to derive BpruEstimator::Params defaults).
 */

#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include "common/table.hh"
#include "core/harness.hh"
#include "core/simulator.hh"

using namespace stsim;

namespace
{

/** Run one benchmark with an estimator attached but no throttling. */
SimResults
runWithEstimator(const std::string &bench, ConfKind kind,
                 const BpruEstimator::Params &params,
                 std::uint64_t insts)
{
    SimConfig cfg;
    cfg.applyEnvOverrides();
    if (insts)
        cfg.maxInstructions = insts;
    cfg.benchmark = bench;
    cfg.confKind = kind;
    cfg.bpruParams = params;
    return Simulator(cfg).run();
}

void
scanBpru(std::uint64_t insts)
{
    std::printf("BPRU parameter scan (avg of 8 benchmarks)\n");
    std::printf("%8s %8s %8s | %6s %6s\n", "missInc", "corrDec",
                "alloc", "SPEC", "PVN");
    for (unsigned inc : {2u, 3u, 4u, 5u, 6u}) {
        for (unsigned dec : {1u, 2u}) {
            for (unsigned alloc : {3u, 4u, 5u}) {
                BpruEstimator::Params p;
                p.missInc = inc;
                p.correctDec = dec;
                p.allocValue = alloc;
                double spec = 0, pvn = 0;
                for (const auto &b : Harness::benchmarks()) {
                    SimResults r =
                        runWithEstimator(b, ConfKind::Bpru, p, insts);
                    spec += r.spec;
                    pvn += r.pvn;
                }
                std::printf("%8u %8u %8u | %5.1f%% %5.1f%%\n", inc, dec,
                            alloc, 100 * spec / 8, 100 * pvn / 8);
                std::fflush(stdout);
            }
        }
    }
}

} // namespace

int
main(int argc, char **argv)
{
    bool scan = argc > 1 && std::strcmp(argv[1], "--scan") == 0;
    if (scan) {
        scanBpru(argc > 2 ? std::strtoull(argv[2], nullptr, 10)
                          : 300'000);
        return 0;
    }

    TextTable t({"bench", "BPRU SPEC", "BPRU PVN", "JRS SPEC",
                 "JRS PVN"});
    t.setTitle("Confidence estimator quality (paper 4.3: BPRU "
               "SPEC=60%/PVN=45%, JRS SPEC=90%/PVN=24%)");

    double bs = 0, bp = 0, js = 0, jp = 0;
    for (const auto &bench : Harness::benchmarks()) {
        SimResults rb = runWithEstimator(bench, ConfKind::Bpru,
                                         BpruEstimator::Params{}, 0);
        SimResults rj = runWithEstimator(bench, ConfKind::Jrs,
                                         BpruEstimator::Params{}, 0);
        t.addRow({bench, TextTable::pct(100 * rb.spec),
                  TextTable::pct(100 * rb.pvn),
                  TextTable::pct(100 * rj.spec),
                  TextTable::pct(100 * rj.pvn)});
        bs += rb.spec;
        bp += rb.pvn;
        js += rj.spec;
        jp += rj.pvn;
    }
    t.addSeparator();
    t.addRow({"Average", TextTable::pct(100 * bs / 8),
              TextTable::pct(100 * bp / 8), TextTable::pct(100 * js / 8),
              TextTable::pct(100 * jp / 8)});
    t.addRow({"paper", "60.0%", "45.0%", "90.0%", "24.0%"});
    t.print(std::cout);
    return 0;
}
