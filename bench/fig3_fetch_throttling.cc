/**
 * @file
 * Reproduces Figure 3: the fetch throttling heuristic, experiments
 * A1-A6 plus Pipeline Gating (A7), per benchmark and averaged.
 *
 * Paper reference (averages): A1-A3 slowdown <1% with energy savings
 * 5.2/6.6/9.2%; A4-A5 ~3% slowdown, ~11.2% energy; A6 12% slowdown
 * (E-D ~ 0); PG 8% slowdown, 11.0% energy, 3.5% E-D. Best tradeoff:
 * A5 (11.7% energy, 8.6% E-D).
 */

#include <iostream>

#include "bench_common.hh"

using namespace stsim;
using namespace stsim::bench;

int
main()
{
    Harness h(benchConfig());

    // One parallel wave for the whole figure (STSIM_JOBS workers).
    std::vector<Experiment> exps = Experiment::figure3Series();
    std::vector<Harness::SuiteRows> tables = h.runMatrix(exps);

    for (std::size_t i = 0; i < exps.size(); ++i) {
        TextTable t(metricHeader("benchmark"));
        t.setTitle("Figure 3 / " + exps[i].name + ": " +
                   exps[i].description);
        for (const auto &[bench, m] : tables[i])
            t.addRow(metricCells(bench, m));
        t.print(std::cout);
        std::cout << "\n";
    }
    return 0;
}
