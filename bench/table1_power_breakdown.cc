/**
 * @file
 * Reproduces Table 1: the baseline power breakdown per Wattch block
 * and the fraction of overall power wasted by mis-speculated
 * instructions, averaged over the eight benchmarks.
 *
 * Paper reference: 56.4 W total, 27.9% wasted; per-unit shares
 * icache 10.0/6.4, bpred 3.8/1.4, regfile 1.6/0.2, rename 1.1/0.5,
 * window 18.2/5.6, lsq 1.9/0.2, alu 8.7/1.0, dcache 10.6/1.1,
 * dcache2 0.7/0.0, resultbus 9.5/1.9, clock 33.8/9.5 (share/wasted,
 * both % of overall power).
 */

#include <array>
#include <iostream>

#include "bench_common.hh"
#include "core/experiment.hh"
#include "core/simulator.hh"

using namespace stsim;
using namespace stsim::bench;

namespace
{

struct PaperRow
{
    PUnit unit;
    double share;  // % of overall power
    double wasted; // % of overall power wasted by mis-speculation
};

constexpr std::array<PaperRow, 11> kPaper = {{
    {PUnit::ICache, 10.0, 6.4},
    {PUnit::Bpred, 3.8, 1.4},
    {PUnit::Regfile, 1.6, 0.2},
    {PUnit::Rename, 1.1, 0.5},
    {PUnit::Window, 18.2, 5.6},
    {PUnit::Lsq, 1.9, 0.2},
    {PUnit::Alu, 8.7, 1.0},
    {PUnit::DCache, 10.6, 1.1},
    {PUnit::DCache2, 0.7, 0.0},
    {PUnit::ResultBus, 9.5, 1.9},
    {PUnit::Clock, 33.8, 9.5},
}};

} // namespace

int
main()
{
    Harness h(benchConfig());
    // All eight baselines in one parallel wave (STSIM_JOBS workers).
    h.computeBaselines();

    std::array<double, kNumPUnits> energy{};
    std::array<double, kNumPUnits> wasted{};
    double total_e = 0.0, total_w = 0.0, watts = 0.0;

    for (const auto &bench : Harness::benchmarks()) {
        const SimResults &r = h.baseline(bench);
        for (PUnit u : kAllPUnits) {
            auto i = static_cast<std::size_t>(u);
            energy[i] += r.unitEnergyJ[i];
            wasted[i] += r.unitWastedJ[i];
        }
        total_e += r.energyJ;
        total_w += r.wastedEnergyJ;
        watts += r.avgPowerW;
    }

    TextTable t({"unit", "share %", "paper share %",
                 "wasted % of overall", "paper wasted %"});
    t.setTitle("Table 1: power breakdown and mis-speculation waste "
               "(average of 8 benchmarks)");
    for (const PaperRow &row : kPaper) {
        auto i = static_cast<std::size_t>(row.unit);
        t.addRow({punitName(row.unit),
                  TextTable::num(100.0 * energy[i] / total_e, 1),
                  TextTable::num(row.share, 1),
                  TextTable::num(100.0 * wasted[i] / total_e, 1),
                  TextTable::num(row.wasted, 1)});
    }
    t.addSeparator();
    t.addRow({"overall", TextTable::num(watts / 8.0, 1) + " W",
              "56.4 W", TextTable::num(100.0 * total_w / total_e, 1),
              "27.9"});
    t.print(std::cout);
    return 0;
}
