/**
 * @file
 * Minimal vendored stand-in for google-benchmark, used when the real
 * library is unavailable and the FetchContent fallback has no network
 * (CMake option STSIM_USE_STUB_BENCHMARK). Implements exactly the
 * subset the repo's microbenchmarks use -- State iteration, adaptive
 * timing, DoNotOptimize, rate counters, --benchmark_filter /
 * --benchmark_min_time / --benchmark_out[_format] -- and emits a
 * BENCH_microbench.json-compatible record. Numbers from this stub are
 * comparable run-to-run, but it is a timer harness, not a statistics
 * engine: prefer the real library for recorded baselines.
 */

#ifndef STSIM_STUB_BENCHMARK_H
#define STSIM_STUB_BENCHMARK_H

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <map>
#include <string>
#include <thread>
#include <vector>

namespace benchmark
{

enum TimeUnit
{
    kNanosecond,
    kMicrosecond,
    kMillisecond,
    kSecond,
};

struct Counter
{
    enum Flags
    {
        kDefaults = 0,
        kIsRate = 1,
    };

    double value = 0.0;
    int flags = kDefaults;

    Counter() = default;
    Counter(double v, int f = kDefaults) : value(v), flags(f) {}
};

template <typename T>
inline void
DoNotOptimize(T const &value)
{
    asm volatile("" : : "r,m"(value) : "memory");
}

template <typename T>
inline void
DoNotOptimize(T &value)
{
    asm volatile("" : "+r,m"(value) : : "memory");
}

class State
{
  public:
    explicit State(std::uint64_t iters) : remaining_(iters),
                                          iters_(iters) {}

    struct Iterator
    {
        State *st;

        bool
        operator!=(const Iterator &) const
        {
            return st->keepRunning();
        }

        void operator++() {}
        int operator*() const { return 0; }
    };

    Iterator begin() { return {this}; }
    Iterator end() { return {this}; }

    std::uint64_t iterations() const { return iters_; }

    std::map<std::string, Counter> counters;

  private:
    bool
    keepRunning()
    {
        if (remaining_ == 0)
            return false;
        --remaining_;
        return true;
    }

    std::uint64_t remaining_;
    std::uint64_t iters_;
};

namespace detail
{

using BenchFn = void (*)(State &);

struct BenchInfo
{
    std::string name;
    BenchFn fn;
    TimeUnit unit = kNanosecond;
};

inline std::vector<BenchInfo> &
registry()
{
    static std::vector<BenchInfo> r;
    return r;
}

class Benchmark
{
  public:
    explicit Benchmark(std::size_t idx) : idx_(idx) {}

    Benchmark *
    Unit(TimeUnit u)
    {
        registry()[idx_].unit = u;
        return this;
    }

  private:
    std::size_t idx_;
};

inline Benchmark *
registerBenchmark(const char *name, BenchFn fn)
{
    registry().push_back({name, fn, kNanosecond});
    static std::vector<Benchmark *> keep;
    keep.push_back(new Benchmark(registry().size() - 1));
    return keep.back();
}

struct Measurement
{
    std::uint64_t iterations = 0;
    double realSeconds = 0.0;
    double cpuSeconds = 0.0;
    std::map<std::string, Counter> counters;
};

inline Measurement
runOnce(const BenchInfo &b, std::uint64_t iters)
{
    Measurement m;
    m.iterations = iters;
    State st(iters);
    auto t0 = std::chrono::steady_clock::now();
    std::clock_t c0 = std::clock();
    b.fn(st);
    std::clock_t c1 = std::clock();
    auto t1 = std::chrono::steady_clock::now();
    m.realSeconds = std::chrono::duration<double>(t1 - t0).count();
    m.cpuSeconds =
        static_cast<double>(c1 - c0) / CLOCKS_PER_SEC;
    m.counters = st.counters;
    return m;
}

/** google-benchmark-style adaptive repetition up to min_time. */
inline Measurement
runAdaptive(const BenchInfo &b, double min_time)
{
    std::uint64_t iters = 1;
    for (;;) {
        Measurement m = runOnce(b, iters);
        if (m.realSeconds >= min_time || iters >= (1ull << 40))
            return m;
        double mult = 10.0;
        if (m.realSeconds > 1e-9)
            mult = min_time / m.realSeconds * 1.4;
        if (mult < 2.0)
            mult = 2.0;
        if (mult > 10.0)
            mult = 10.0;
        iters = static_cast<std::uint64_t>(
            static_cast<double>(iters) * mult + 1.0);
    }
}

inline double
unitScale(TimeUnit u)
{
    switch (u) {
      case kNanosecond: return 1e9;
      case kMicrosecond: return 1e6;
      case kMillisecond: return 1e3;
      case kSecond: return 1.0;
    }
    return 1e9;
}

inline const char *
unitName(TimeUnit u)
{
    switch (u) {
      case kNanosecond: return "ns";
      case kMicrosecond: return "us";
      case kMillisecond: return "ms";
      case kSecond: return "s";
    }
    return "ns";
}

/** Very small substring filter (no regex; enough for CI smoke use). */
inline bool
nameMatches(const std::string &name, const std::string &filter)
{
    return filter.empty() || name.find(filter) != std::string::npos;
}

inline int
benchMain(int argc, char **argv)
{
    std::string filter, out_path, out_format = "json";
    double min_time = 0.5;
    for (int i = 1; i < argc; ++i) {
        const char *a = argv[i];
        auto val = [&](const char *pfx) -> const char * {
            std::size_t n = std::strlen(pfx);
            return std::strncmp(a, pfx, n) == 0 ? a + n : nullptr;
        };
        if (const char *v = val("--benchmark_filter="))
            filter = v;
        else if (const char *v = val("--benchmark_min_time="))
            min_time = std::strtod(v, nullptr);
        else if (const char *v = val("--benchmark_out="))
            out_path = v;
        else if (const char *v = val("--benchmark_out_format="))
            out_format = v;
    }
    if (min_time <= 0.0)
        min_time = 0.5;

    std::printf("%-28s %15s %15s %12s\n", "Benchmark", "Time", "CPU",
                "Iterations");
    std::printf("%s\n", std::string(74, '-').c_str());

    std::vector<std::pair<BenchInfo, Measurement>> results;
    for (const BenchInfo &b : registry()) {
        if (!nameMatches(b.name, filter))
            continue;
        Measurement m = runAdaptive(b, min_time);
        results.emplace_back(b, m);
        double scale = unitScale(b.unit);
        double it = static_cast<double>(m.iterations);
        std::printf("%-28s %12.3g %s %12.3g %s %12llu", b.name.c_str(),
                    m.realSeconds / it * scale, unitName(b.unit),
                    m.cpuSeconds / it * scale, unitName(b.unit),
                    static_cast<unsigned long long>(m.iterations));
        for (const auto &[cname, c] : m.counters) {
            double v = c.value;
            if (c.flags & Counter::kIsRate)
                v /= m.cpuSeconds; // rate counters use CPU time, like google-benchmark
            std::printf(" %s=%.4g", cname.c_str(), v);
        }
        std::printf("\n");
    }

    if (!out_path.empty() && out_format == "json") {
        std::FILE *f = std::fopen(out_path.c_str(), "w");
        if (!f) {
            std::fprintf(stderr, "cannot write %s\n",
                         out_path.c_str());
            return 1;
        }
        std::time_t now = std::time(nullptr);
        char datebuf[64];
        std::strftime(datebuf, sizeof(datebuf), "%FT%T%z",
                      std::localtime(&now));
        std::fprintf(f,
                     "{\n  \"context\": {\n"
                     "    \"date\": \"%s\",\n"
                     "    \"executable\": \"%s\",\n"
                     "    \"num_cpus\": %u,\n"
                     "    \"stub_harness\": true,\n"
#ifdef NDEBUG
                     "    \"library_build_type\": \"release\"\n"
#else
                     "    \"library_build_type\": \"debug\"\n"
#endif
                     "  },\n  \"benchmarks\": [\n",
                     datebuf, argc > 0 ? argv[0] : "",
                     std::thread::hardware_concurrency());
        for (std::size_t i = 0; i < results.size(); ++i) {
            const BenchInfo &b = results[i].first;
            const Measurement &m = results[i].second;
            double scale = unitScale(b.unit);
            double it = static_cast<double>(m.iterations);
            std::fprintf(f,
                         "    {\n"
                         "      \"name\": \"%s\",\n"
                         "      \"run_name\": \"%s\",\n"
                         "      \"run_type\": \"iteration\",\n"
                         "      \"repetitions\": 1,\n"
                         "      \"repetition_index\": 0,\n"
                         "      \"threads\": 1,\n"
                         "      \"iterations\": %llu,\n"
                         "      \"real_time\": %.17g,\n"
                         "      \"cpu_time\": %.17g,\n"
                         "      \"time_unit\": \"%s\"",
                         b.name.c_str(), b.name.c_str(),
                         static_cast<unsigned long long>(m.iterations),
                         m.realSeconds / it * scale,
                         m.cpuSeconds / it * scale, unitName(b.unit));
            for (const auto &[cname, c] : m.counters) {
                double v = c.value;
                if (c.flags & Counter::kIsRate)
                    v /= m.cpuSeconds; // rate counters use CPU time, like google-benchmark
                std::fprintf(f, ",\n      \"%s\": %.17g",
                             cname.c_str(), v);
            }
            std::fprintf(f, "\n    }%s\n",
                         i + 1 < results.size() ? "," : "");
        }
        std::fprintf(f, "  ]\n}\n");
        std::fclose(f);
    }
    return 0;
}

} // namespace detail

} // namespace benchmark

#define BENCHMARK(fn)                                                  \
    static ::benchmark::detail::Benchmark *BENCHMARK_PRIVATE_##fn =    \
        ::benchmark::detail::registerBenchmark(#fn, fn)

#define BENCHMARK_MAIN()                                               \
    int main(int argc, char **argv)                                    \
    {                                                                  \
        return ::benchmark::detail::benchMain(argc, argv);             \
    }

#endif // STSIM_STUB_BENCHMARK_H
