/**
 * @file
 * Reproduces Figure 1: oracle fetch / decode / select experiments.
 * Paper reference (averages): oracle fetch saves ~21% power / ~24%
 * energy / ~28% E-D with ~5% speedup; oracle decode ~13.7% power;
 * oracle select ~8.7% power.
 */

#include <iostream>

#include "bench_common.hh"

using namespace stsim;
using namespace stsim::bench;

int
main()
{
    Harness h(benchConfig());

    TextTable t(metricHeader("experiment"));
    t.setTitle("Figure 1: oracle fetch/decode/select savings "
               "(average of 8 benchmarks)");
    for (const char *name :
         {"oracle-fetch", "oracle-decode", "oracle-select"}) {
        auto rows = h.runSuite(Experiment::byName(name));
        t.addRow(metricCells(name, rows.back().second));
    }
    t.addSeparator();
    t.addRow({"paper oracle-fetch", "1.05", "21%", "24%", "28%"});
    t.addRow({"paper oracle-decode", "~1.00", "13.7%", "-", "-"});
    t.addRow({"paper oracle-select", "~1.00", "8.7%", "-", "-"});
    t.print(std::cout);
    return 0;
}
