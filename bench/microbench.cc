/**
 * @file
 * google-benchmark microbenchmarks of the substrate hot paths:
 * predictor lookups, cache accesses, workload generation and
 * whole-core simulation throughput.
 */

#include <benchmark/benchmark.h>

#include <memory>

#include "bpred/gshare.hh"
#include "cache/cache.hh"
#include "confidence/bpru.hh"
#include "confidence/jrs.hh"
#include "core/experiment.hh"
#include "core/simulator.hh"
#include "trace/workload.hh"

using namespace stsim;

namespace
{

void
BM_GsharePredictUpdate(benchmark::State &state)
{
    Gshare g(8 * 1024);
    Rng rng(1);
    std::uint64_t hist = 0;
    for (auto _ : state) {
        Addr pc = 0x400000 + 4 * (rng.next() & 0xFFFF);
        auto p = g.predict(pc, hist);
        bool taken = rng.chance(0.6);
        g.update(pc, hist, taken);
        hist = (hist << 1) | taken;
        benchmark::DoNotOptimize(p.taken);
    }
}
BENCHMARK(BM_GsharePredictUpdate);

void
BM_JrsEstimate(benchmark::State &state)
{
    JrsEstimator jrs(8 * 1024, 12);
    Rng rng(2);
    DirectionPredictor::Prediction dir{true, 3, 3};
    for (auto _ : state) {
        Addr pc = 0x400000 + 4 * (rng.next() & 0xFFFF);
        benchmark::DoNotOptimize(jrs.estimate(pc, rng.next(), dir,
                                              true));
        jrs.update(pc, 0, rng.chance(0.9));
    }
}
BENCHMARK(BM_JrsEstimate);

void
BM_BpruEstimate(benchmark::State &state)
{
    BpruEstimator bpru(8 * 1024);
    Rng rng(3);
    DirectionPredictor::Prediction dir{true, 3, 3};
    for (auto _ : state) {
        Addr pc = 0x400000 + 4 * (rng.next() & 0xFFFF);
        benchmark::DoNotOptimize(bpru.estimate(pc, rng.next(), dir,
                                               true));
        bpru.update(pc, 0, rng.chance(0.9));
    }
}
BENCHMARK(BM_BpruEstimate);

void
BM_CacheAccess(benchmark::State &state)
{
    Cache c({"bm", 64 * 1024, 2, 32, 1});
    Rng rng(4);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            c.access(rng.next() & 0x3FFFF, false, false));
    }
}
BENCHMARK(BM_CacheAccess);

void
BM_WorkloadGeneration(benchmark::State &state)
{
    auto prog = Simulator::programFor("go");
    Workload w(prog, 5);
    for (auto _ : state)
        benchmark::DoNotOptimize(w.next().pc);
}
BENCHMARK(BM_WorkloadGeneration);

void
BM_CoreSimulation(benchmark::State &state)
{
    // Whole-machine throughput in committed instructions/second.
    SimConfig cfg;
    cfg.benchmark = "crafty";
    cfg.maxInstructions = 50'000;
    cfg.warmupInstructions = 10'000;
    Experiment::byName("baseline").applyTo(cfg);
    std::uint64_t insts = 0;
    for (auto _ : state) {
        SimResults r = Simulator(cfg).run();
        insts += r.core.committedInsts;
        benchmark::DoNotOptimize(r.ipc);
    }
    state.counters["inst/s"] = benchmark::Counter(
        static_cast<double>(insts), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_CoreSimulation)->Unit(benchmark::kMillisecond);

void
BM_CoreSimulationC2(benchmark::State &state)
{
    SimConfig cfg;
    cfg.benchmark = "crafty";
    cfg.maxInstructions = 50'000;
    cfg.warmupInstructions = 10'000;
    Experiment::byName("C2").applyTo(cfg);
    for (auto _ : state) {
        SimResults r = Simulator(cfg).run();
        benchmark::DoNotOptimize(r.energyJ);
    }
}
BENCHMARK(BM_CoreSimulationC2)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
