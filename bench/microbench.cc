/**
 * @file
 * google-benchmark microbenchmarks of the substrate hot paths:
 * predictor lookups, cache accesses, workload generation and
 * whole-core simulation throughput.
 */

#include <benchmark/benchmark.h>

#include <memory>

#include "bpred/gshare.hh"
#include "cache/cache.hh"
#include "common/scan_mask.hh"
#include "confidence/bpru.hh"
#include "confidence/jrs.hh"
#include "core/experiment.hh"
#include "core/simulator.hh"
#include "pipeline/producer_table.hh"
#include "trace/workload.hh"

using namespace stsim;

namespace
{

void
BM_GsharePredictUpdate(benchmark::State &state)
{
    Gshare g(8 * 1024);
    Rng rng(1);
    std::uint64_t hist = 0;
    for (auto _ : state) {
        Addr pc = 0x400000 + 4 * (rng.next() & 0xFFFF);
        auto p = g.predict(pc, hist);
        bool taken = rng.chance(0.6);
        g.update(pc, hist, taken);
        hist = (hist << 1) | taken;
        benchmark::DoNotOptimize(p.taken);
    }
}
BENCHMARK(BM_GsharePredictUpdate);

void
BM_JrsEstimate(benchmark::State &state)
{
    JrsEstimator jrs(8 * 1024, 12);
    Rng rng(2);
    DirectionPredictor::Prediction dir{true, 3, 3};
    for (auto _ : state) {
        Addr pc = 0x400000 + 4 * (rng.next() & 0xFFFF);
        benchmark::DoNotOptimize(jrs.estimate(pc, rng.next(), dir,
                                              true));
        jrs.update(pc, 0, rng.chance(0.9));
    }
}
BENCHMARK(BM_JrsEstimate);

void
BM_BpruEstimate(benchmark::State &state)
{
    BpruEstimator bpru(8 * 1024);
    Rng rng(3);
    DirectionPredictor::Prediction dir{true, 3, 3};
    for (auto _ : state) {
        Addr pc = 0x400000 + 4 * (rng.next() & 0xFFFF);
        benchmark::DoNotOptimize(bpru.estimate(pc, rng.next(), dir,
                                               true));
        bpru.update(pc, 0, rng.chance(0.9));
    }
}
BENCHMARK(BM_BpruEstimate);

void
BM_CacheAccess(benchmark::State &state)
{
    Cache c({"bm", 64 * 1024, 2, 32, 1});
    Rng rng(4);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            c.access(rng.next() & 0x3FFFF, false, false));
    }
}
BENCHMARK(BM_CacheAccess);

void
BM_WorkloadGeneration(benchmark::State &state)
{
    auto prog = Simulator::programFor("go");
    Workload w(prog, 5);
    for (auto _ : state)
        benchmark::DoNotOptimize(w.next().pc);
}
BENCHMARK(BM_WorkloadGeneration);

void
BM_DispatchResolve(benchmark::State &state)
{
    // Dispatch-time dependence resolution against the last-producer
    // table: two source lookups, one publish and one retirement per
    // instruction, over a window-sized live set (the core's resolve
    // fast path, isolated from the rest of the pipeline).
    ProducerTable tab;
    tab.init(256);
    Rng rng(6);
    constexpr InstSeq kWindow = 128;
    InstSeq seq = 1;
    for (auto _ : state) {
        if (seq > kWindow)
            tab.erase(seq - kWindow); // oldest producer completes
        for (int k = 0; k < 2; ++k) {
            const InstSeq d = 1 + (rng.next() & 63);
            if (d < seq)
                benchmark::DoNotOptimize(tab.lookup(seq - d));
        }
        // Consecutive live seqs never alias in a 2x-sized table, so
        // the fast path always succeeds here -- as in the core.
        benchmark::DoNotOptimize(
            tab.tryInsert(seq, static_cast<std::uint32_t>(seq & 255)));
        ++seq;
    }
}
BENCHMARK(BM_DispatchResolve);

void
BM_FetchGroupGen(benchmark::State &state)
{
    // Batched fetch-group generation: the bulk Workload walker filling
    // an 8-wide group buffer, counted in generated instructions.
    auto prog = Simulator::programFor("go");
    Workload w(prog, 5);
    TraceInst buf[8];
    TraceInst *out[8];
    for (int i = 0; i < 8; ++i)
        out[i] = &buf[i];
    std::uint64_t insts = 0;
    for (auto _ : state) {
        const unsigned m = w.nextGroup(out, 8);
        insts += m;
        benchmark::DoNotOptimize(buf[m - 1].pc);
    }
    state.counters["inst/s"] = benchmark::Counter(
        static_cast<double>(insts), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FetchGroupGen);

void
BM_StoreScan(benchmark::State &state)
{
    // LSQ-style memory-ordering scan: a sliding 64-entry occupancy
    // with sparse store bits, one bounded find-first per load (the
    // loadMayIssue / tryForward pattern).
    ScanMask m;
    m.init(64);
    Rng rng(7);
    std::uint64_t base = 0;
    std::uint64_t tail = 0;
    for (; tail < 64; ++tail)
        if (rng.chance(0.2))
            m.set(tail);
    for (auto _ : state) {
        m.clear(base); // oldest entry retires
        ++base;
        if (rng.chance(0.2))
            m.set(tail); // a new store dispatches
        ++tail;
        benchmark::DoNotOptimize(m.firstSet(base, tail));
    }
}
BENCHMARK(BM_StoreScan);

void
BM_CoreSimulation(benchmark::State &state)
{
    // Whole-machine throughput in committed instructions/second.
    SimConfig cfg;
    cfg.benchmark = "crafty";
    cfg.maxInstructions = 50'000;
    cfg.warmupInstructions = 10'000;
    Experiment::byName("baseline").applyTo(cfg);
    std::uint64_t insts = 0;
    for (auto _ : state) {
        SimResults r = Simulator(cfg).run();
        insts += r.core.committedInsts;
        benchmark::DoNotOptimize(r.ipc);
    }
    state.counters["inst/s"] = benchmark::Counter(
        static_cast<double>(insts), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_CoreSimulation)->Unit(benchmark::kMillisecond);

void
BM_CoreSimulationC2(benchmark::State &state)
{
    SimConfig cfg;
    cfg.benchmark = "crafty";
    cfg.maxInstructions = 50'000;
    cfg.warmupInstructions = 10'000;
    Experiment::byName("C2").applyTo(cfg);
    for (auto _ : state) {
        SimResults r = Simulator(cfg).run();
        benchmark::DoNotOptimize(r.energyJ);
    }
}
BENCHMARK(BM_CoreSimulationC2)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
