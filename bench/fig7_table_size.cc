/**
 * @file
 * Reproduces Figure 7: sensitivity to the combined branch predictor +
 * confidence estimator budget, 8 KB to 64 KB total. The baseline at
 * size X devotes all of X to its gshare; Selective Throttling splits
 * X evenly between gshare and the BPRU estimator (5.3.2).
 *
 * Paper reference: power savings shrink with size (20.3% at 8 KB ->
 * 16.5% at 64 KB) while energy savings (11-12%) and E-D improvements
 * (4-5%) stay roughly flat; C2's performance loss shrinks as the
 * estimator gets more accurate.
 */

#include <iostream>
#include <vector>

#include "bench_common.hh"
#include "core/parallel_harness.hh"

using namespace stsim;
using namespace stsim::bench;

int
main()
{
    TextTable t(metricHeader("total KB"));
    t.setTitle("Figure 7: predictor + estimator size sensitivity of "
               "C2 (average of 8 benchmarks)");

    const std::vector<std::size_t> sizes = {8, 16, 32, 64};

    // Every (size, benchmark) needs a per-job predictor/estimator
    // split, which runMatrix's shared base config cannot express, so
    // this driver feeds the job engine directly: one wave of
    // sizes x benchmarks x {baseline, C2} simulations.
    std::vector<SimJob> jobs;
    for (std::size_t total_kb : sizes) {
        for (const auto &bench : Harness::benchmarks()) {
            // Baseline: the whole budget goes to the gshare.
            SimJob base;
            base.cfg = benchConfig();
            base.cfg.benchmark = bench;
            base.cfg.bpred.predictorBytes = total_kb * 1024;
            Experiment::byName("baseline").applyTo(base.cfg);
            base.experiment = "baseline";
            jobs.push_back(std::move(base));

            // Selective Throttling: half predictor, half estimator.
            SimJob st;
            st.cfg = benchConfig();
            st.cfg.benchmark = bench;
            st.cfg.bpred.predictorBytes = total_kb * 512;
            st.cfg.confBytes = total_kb * 512;
            Experiment::byName("C2").applyTo(st.cfg);
            st.experiment = "C2";
            jobs.push_back(std::move(st));
        }
    }
    std::vector<SimResults> results = runJobs(jobs);

    std::size_t i = 0;
    for (std::size_t total_kb : sizes) {
        RelativeMetrics sum;
        sum.speedup = 0;
        for (std::size_t b = 0; b < Harness::benchmarks().size(); ++b) {
            const SimResults &rb = results[i++];
            const SimResults &rs = results[i++];
            RelativeMetrics m = RelativeMetrics::compute(rb, rs);
            sum.speedup += m.speedup;
            sum.powerSavings += m.powerSavings;
            sum.energySavings += m.energySavings;
            sum.edImprovement += m.edImprovement;
        }
        RelativeMetrics avg;
        avg.speedup = sum.speedup / 8;
        avg.powerSavings = sum.powerSavings / 8;
        avg.energySavings = sum.energySavings / 8;
        avg.edImprovement = sum.edImprovement / 8;
        t.addRow(metricCells(std::to_string(total_kb), avg));
    }
    t.addSeparator();
    t.addRow({"paper 8", "-", "20.3%", "11-12%", "4-5%"});
    t.addRow({"paper 64", "-", "16.5%", "11-12%", "4-5%"});
    t.print(std::cout);
    return 0;
}
