/**
 * @file
 * Reproduces Figure 7: sensitivity to the combined branch predictor +
 * confidence estimator budget, 8 KB to 64 KB total. The baseline at
 * size X devotes all of X to its gshare; Selective Throttling splits
 * X evenly between gshare and the BPRU estimator (5.3.2).
 *
 * Paper reference: power savings shrink with size (20.3% at 8 KB ->
 * 16.5% at 64 KB) while energy savings (11-12%) and E-D improvements
 * (4-5%) stay roughly flat; C2's performance loss shrinks as the
 * estimator gets more accurate.
 */

#include <iostream>

#include "bench_common.hh"
#include "core/simulator.hh"

using namespace stsim;
using namespace stsim::bench;

int
main()
{
    TextTable t(metricHeader("total KB"));
    t.setTitle("Figure 7: predictor + estimator size sensitivity of "
               "C2 (average of 8 benchmarks)");

    for (std::size_t total_kb : {8u, 16u, 32u, 64u}) {
        RelativeMetrics sum;
        sum.speedup = 0;
        for (const auto &bench : Harness::benchmarks()) {
            // Baseline: the whole budget goes to the gshare.
            SimConfig base = benchConfig();
            base.benchmark = bench;
            base.bpred.predictorBytes = total_kb * 1024;
            Experiment::byName("baseline").applyTo(base);
            SimResults rb = Simulator(base).run();

            // Selective Throttling: half predictor, half estimator.
            SimConfig st = benchConfig();
            st.benchmark = bench;
            st.bpred.predictorBytes = total_kb * 512;
            st.confBytes = total_kb * 512;
            Experiment::byName("C2").applyTo(st);
            SimResults rs = Simulator(st).run();

            RelativeMetrics m = RelativeMetrics::compute(rb, rs);
            sum.speedup += m.speedup;
            sum.powerSavings += m.powerSavings;
            sum.energySavings += m.energySavings;
            sum.edImprovement += m.edImprovement;
        }
        RelativeMetrics avg;
        avg.speedup = sum.speedup / 8;
        avg.powerSavings = sum.powerSavings / 8;
        avg.energySavings = sum.energySavings / 8;
        avg.edImprovement = sum.edImprovement / 8;
        t.addRow(metricCells(std::to_string(total_kb), avg));
    }
    t.addSeparator();
    t.addRow({"paper 8", "-", "20.3%", "11-12%", "4-5%"});
    t.addRow({"paper 64", "-", "16.5%", "11-12%", "4-5%"});
    t.print(std::cout);
    return 0;
}
