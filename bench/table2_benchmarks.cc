/**
 * @file
 * Reproduces Table 2: benchmark characteristics. The paper reports
 * input set, instruction counts and the gshare-8KB misprediction rate
 * per benchmark; this harness validates that the synthetic profiles
 * land on the misprediction-rate and branch-density targets.
 */

#include <iostream>

#include "bench_common.hh"
#include "core/experiment.hh"
#include "core/simulator.hh"
#include "trace/profile.hh"

using namespace stsim;
using namespace stsim::bench;

int
main()
{
    Harness h(benchConfig());
    // All eight baseline characterizations in one parallel wave.
    h.computeBaselines();

    TextTable t({"benchmark", "gshare miss", "paper miss",
                 "cond-branch frac", "paper frac", "IPC", "il1 MR",
                 "dl1 MR"});
    t.setTitle("Table 2: benchmark characteristics (synthetic "
               "profiles vs paper targets)");

    double miss = 0, target = 0;
    for (const auto &prof : specProfiles()) {
        const SimResults &r = h.baseline(prof.name);
        double frac = static_cast<double>(r.core.committedCondBranches) /
                      static_cast<double>(r.core.committedInsts);
        t.addRow({prof.name, TextTable::pct(100 * r.condMissRate),
                  TextTable::pct(100 * prof.targetMissRate),
                  TextTable::pct(100 * frac),
                  TextTable::pct(100 * prof.condBranchFrac),
                  TextTable::num(r.ipc, 2),
                  TextTable::pct(100 * r.il1MissRate),
                  TextTable::pct(100 * r.dl1MissRate)});
        miss += r.condMissRate;
        target += prof.targetMissRate;
    }
    t.addSeparator();
    t.addRow({"Average", TextTable::pct(100 * miss / 8),
              TextTable::pct(100 * target / 8), "", "", "", "", ""});
    t.print(std::cout);
    return 0;
}
