/**
 * @file
 * Ablation study of the design choices DESIGN.md calls out, built
 * around the headline configuration C2:
 *
 *  1. estimator quality — C2 under the realistic BPRU estimator vs a
 *     perfect (oracle) estimator: how much of the remaining E-D gap
 *     is confidence precision rather than mechanism;
 *  2. selection throttling placement — no-select on LC only (the
 *     paper's C2) vs on both LC and VLC vs none (C1 = A5);
 *  3. graded response — C2's LC fetch/4 vs an all-or-nothing variant
 *     that stalls fetch for both levels (A6-with-noselect), isolating
 *     the value of *selective* throttling over uniform gating.
 */

#include <iostream>

#include "bench_common.hh"

using namespace stsim;
using namespace stsim::bench;

namespace
{

Experiment
custom(const std::string &name, ThrottleAction lc, ThrottleAction vlc,
       ConfKind conf = ConfKind::Bpru)
{
    Experiment e;
    e.name = name;
    e.description = name;
    e.confKind = conf;
    e.specControl.mode = SpecControlMode::Selective;
    e.specControl.policy = ThrottlePolicy::make(name, lc, vlc);
    return e;
}

} // namespace

int
main()
{
    Harness h(benchConfig());

    constexpr BandwidthLevel F = BandwidthLevel::Full;
    constexpr BandwidthLevel Q = BandwidthLevel::Quarter;
    constexpr BandwidthLevel S = BandwidthLevel::Stall;

    TextTable t(metricHeader("variant"));
    t.setTitle("Ablation: Selective Throttling design choices "
               "(average of 8 benchmarks)");

    // 1. Mechanism under realistic vs oracle confidence.
    Experiment c2 = Experiment::byName("C2");
    t.addRow(metricCells("C2 (BPRU estimator)",
                         h.runSuite(c2).back().second));
    Experiment c2_perfect = c2;
    c2_perfect.name = "C2-perfect";
    c2_perfect.confKind = ConfKind::Perfect;
    t.addRow(metricCells("C2 (perfect estimator)",
                         h.runSuite(c2_perfect).back().second));

    t.addSeparator();

    // 2. Where the no-select bit applies.
    t.addRow(metricCells(
        "no-select: none (C1)",
        h.runSuite(Experiment::byName("C1")).back().second));
    t.addRow(metricCells(
        "no-select: LC only (C2)",
        h.runSuite(custom("c2-again", {Q, F, true}, {S, F, false}))
            .back()
            .second));
    t.addRow(metricCells(
        "no-select: LC+VLC",
        h.runSuite(custom("c2-vlcns", {Q, F, true}, {S, F, true}))
            .back()
            .second));

    t.addSeparator();

    // 3. Graded response vs all-or-nothing gating.
    t.addRow(metricCells(
        "graded (C2)",
        h.runSuite(custom("graded", {Q, F, true}, {S, F, false}))
            .back()
            .second));
    t.addRow(metricCells(
        "all-or-nothing + noselect",
        h.runSuite(custom("aon", {S, F, true}, {S, F, true}))
            .back()
            .second));

    t.print(std::cout);
    return 0;
}
